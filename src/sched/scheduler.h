// Scheduler interfaces (paper §2.1).
//
// A scheduler holds task *priorities*. Priorities in this library are dense
// 32-bit labels assigned by a permutation pi: label 0 is the highest
// priority. Because labels are unique per task and re-insertions reuse the
// original label (paper: Q.insert(v_t, pi(v_t))), the scheduler only needs
// to store the label itself; callers map labels back to tasks through
// graph::Priorities::order.
//
// Sequential schedulers implement:
//   insert(label)              -- paper's Insert(<task, priority>)
//   approx_get_min()           -- paper's ApproxGetMin(); nullopt == bottom
//   empty(), size()
//
// A (k, phi)-relaxed scheduler (Definition 1) additionally promises
// exponential tail bounds on the rank of returned elements (rank bound k)
// and on per-element priority inversions (fairness bound phi). The bounds
// are not enforceable by the type system; tests/sched_quality_test.cc and
// bench/scheduler_quality measure them empirically via RelaxationMonitor.
#pragma once

#include <concepts>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "util/spinlock.h"

namespace relax::sched {

using Priority = std::uint32_t;

template <typename S>
concept SequentialScheduler = requires(S s, Priority p) {
  { s.insert(p) } -> std::same_as<void>;
  { s.approx_get_min() } -> std::same_as<std::optional<Priority>>;
  { s.empty() } -> std::convertible_to<bool>;
  { s.size() } -> std::convertible_to<std::size_t>;
};

/// Concurrent schedulers use the same vocabulary but must be safe to call
/// from many threads. approx_get_min() returning nullopt means "observed
/// empty at some point during the call" — with in-flight re-insertions the
/// caller must use its own termination criterion (see core/parallel docs).
template <typename S>
concept ConcurrentScheduler = requires(S s, Priority p) {
  { s.insert(p) } -> std::same_as<void>;
  { s.approx_get_min() } -> std::same_as<std::optional<Priority>>;
};

/// Adapts any SequentialScheduler into a ConcurrentScheduler by serializing
/// every operation through one spinlock. Deliberately unscalable — the use
/// cases are deterministic schedulers (KBoundedScheduler) and audit wrappers
/// (RelaxationMonitor) inside the concurrent engine, where correctness of
/// the single-threaded structure matters more than throughput.
template <SequentialScheduler S>
class LockedScheduler {
 public:
  template <typename... Args>
  explicit LockedScheduler(Args&&... args)
      : inner_(std::forward<Args>(args)...) {}

  void insert(Priority p) {
    std::lock_guard<util::Spinlock> guard(lock_);
    inner_.insert(p);
  }
  std::optional<Priority> approx_get_min() {
    std::lock_guard<util::Spinlock> guard(lock_);
    return inner_.approx_get_min();
  }
  [[nodiscard]] bool empty() const {
    std::lock_guard<util::Spinlock> guard(lock_);
    return inner_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<util::Spinlock> guard(lock_);
    return inner_.size();
  }

  /// The wrapped scheduler. Callers must be quiescent (no concurrent ops).
  [[nodiscard]] S& inner() noexcept { return inner_; }

 private:
  mutable util::Spinlock lock_;
  S inner_;
};

}  // namespace relax::sched
