// Deterministic k-bounded scheduler, modelled on the shared-buffer /
// k-LSM family (Wimmer et al., reference [26] of the paper).
//
// Invariant: `window_` always holds the min(k, size) smallest present
// priorities, in ascending order (inserts displace the window back into the
// side heap; pops refill from the heap). ApproxGetMin normally serves the
// *back* of the window — the largest of the k smallest — which makes the
// relaxation adversarially maximal; every k-th pop instead serves the
// *front* (the exact minimum), a deterministic fairness valve.
//
// Guarantees (deterministic, not probabilistic):
//   * Rank bound: every returned element comes from the maintained window,
//     so its rank among present elements is < k at every step, under any
//     insert/pop interleaving.
//   * Fairness / progress: every k-th pop returns the exact current
//     minimum. In framework executions (paper §2.2) the minimum-labelled
//     unprocessed task is always dependency-free, so at least one task
//     retires per k pops and the executor terminates. An element of rank r
//     suffers at most k·r + k inversions before service (each front-service
//     strictly shrinks the set of smaller elements).
//
// An earlier variant without the fairness valve livelocks on adversarial
// inputs such as greedy coloring on a clique: the single ready task is the
// window minimum, while the served back keeps cycling between pop and
// re-insert. The periodic front-service removes that cycle while keeping
// the worst-case-within-window service that makes experiment overheads
// conservative.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sched/dary_heap.h"
#include "sched/scheduler.h"

namespace relax::sched {

class KBoundedScheduler {
 public:
  explicit KBoundedScheduler(std::uint32_t k)
      : k_(std::max<std::uint32_t>(k, 1)) {}
  /// (seed ignored; this scheduler is deterministic.)
  KBoundedScheduler(std::uint32_t k, std::uint64_t /*seed*/)
      : KBoundedScheduler(k) {}

  void insert(Priority p) {
    if (window_.size() < k_) {
      insert_into_window(p);
    } else if (p < window_.back()) {
      heap_.push(window_.back());
      window_.pop_back();
      insert_into_window(p);
    } else {
      heap_.push(p);
    }
  }

  std::optional<Priority> approx_get_min() {
    if (window_.empty()) return std::nullopt;
    ++tick_;
    Priority p;
    if (tick_ % k_ == 0) {
      p = window_.front();  // fairness valve: exact minimum
      window_.erase(window_.begin());
    } else {
      p = window_.back();  // adversarial: largest of the k smallest
      window_.pop_back();
    }
    if (!heap_.empty()) window_.push_back(heap_.pop());
    return p;
  }

  [[nodiscard]] bool empty() const noexcept { return window_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return window_.size() + heap_.size();
  }

 private:
  void insert_into_window(Priority p) {
    window_.insert(std::lower_bound(window_.begin(), window_.end(), p), p);
  }

  std::uint32_t k_;
  std::uint64_t tick_ = 0;
  DaryHeap<Priority> heap_;
  std::vector<Priority> window_;  // ascending; size <= k_
};

static_assert(SequentialScheduler<KBoundedScheduler>);

}  // namespace relax::sched
