#include "obs/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace relax::obs {

namespace {

WorkerSnapshot snap_worker(const WorkerMetrics& m) {
  WorkerSnapshot s;
  s.slices = m.slices.value();
  s.idle_visits = m.idle_visits.value();
  s.slice_ns = m.slice_ns.snapshot();
  s.claims = m.claims.value();
  s.claim_size = m.claim_size.snapshot();
  s.pops = m.pops.value();
  s.processed = m.processed.value();
  s.failed_deletes = m.failed_deletes.value();
  s.dead_skips = m.dead_skips.value();
  s.empty_polls = m.empty_polls.value();
  s.reinserts = m.reinserts.value();
  s.numa_local_claims = m.numa_local_claims.value();
  s.numa_steal_claims = m.numa_steal_claims.value();
  s.current_claim = m.current_claim.value();
  s.regime_ramps = m.regime_ramps.value();
  s.regime_resets = m.regime_resets.value();
  s.regime_backlog_jumps = m.regime_backlog_jumps.value();
  s.regime_drain_pins = m.regime_drain_pins.value();
  s.parks = m.parks.value();
  s.park_ns = m.park_ns.snapshot();
  return s;
}

void append(std::string& out, const char* fmt, ...) {
  // Wide enough for the longest line (a JSON worker object prefix); the
  // clamp guards regardless — vsnprintf returns the UNtruncated length,
  // and appending that many bytes from a shorter buffer would overread.
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0)
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

/// One per-worker counter family: a # TYPE header then one sample per
/// worker, Prometheus text form.
template <typename Get>
void prom_counter(std::string& out, const MetricsSnapshot& snap,
                  const char* name, const char* help, Get get,
                  const char* type = "counter") {
  append(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  for (std::size_t w = 0; w < snap.workers.size(); ++w) {
    append(out, "%s{worker=\"%zu\"} %" PRIu64 "\n", name, w,
           get(snap.workers[w]));
  }
}

/// A merged histogram in Prometheus histogram form: cumulative _bucket
/// samples at each populated power-of-two boundary, then _sum/_count.
void prom_histogram(std::string& out, const char* name, const char* help,
                    const Histogram& h) {
  append(out, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kHistogramBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    cum += h.bucket(b);
    append(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name,
           bucket_ceil(b), cum);
  }
  append(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name, h.count());
  append(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n", name, h.sum(),
         name, h.count());
}

void prom_quantiles(std::string& out, const char* name, const char* help,
                    const Histogram& h) {
  append(out, "# HELP %s %s\n# TYPE %s summary\n", name, help, name);
  for (const double q : {50.0, 95.0, 99.0}) {
    append(out, "%s{quantile=\"0.%.0f\"} %.1f\n", name, q,
           h.percentile(q));
  }
}

void json_histogram(std::string& out, const char* name, const Histogram& h,
                    bool trailing_comma) {
  append(out,
         "\"%s\": {\"count\": %" PRIu64 ", \"mean\": %.1f, \"max\": %" PRIu64
         ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}%s",
         name, h.count(), h.mean(), h.max(), h.percentile(50.0),
         h.percentile(95.0), h.percentile(99.0),
         trailing_comma ? ", " : "");
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.workers.reserve(workers_.size());
  for (const auto& slot : workers_) {
    snap.workers.push_back(snap_worker(*slot));
    snap.slice_ns.merge(snap.workers.back().slice_ns);
    snap.claim_size.merge(snap.workers.back().claim_size);
    snap.park_ns.merge(snap.workers.back().park_ns);
  }
  snap.jobs_submitted = jobs_submitted_.value();
  snap.jobs_completed = jobs_completed_.value();
  const unsigned claimed = std::min<unsigned>(
      qos_next_.load(std::memory_order_relaxed), kQosSlots);
  snap.qos.reserve(claimed);
  for (unsigned i = 0; i < claimed; ++i) {
    const QosTenantMetrics& m = *qos_[i];
    QosTenantSnapshot q;
    q.job_id = m.job_id.value();
    q.weight = m.weight.value();
    q.grants = m.grants.value();
    q.granted_iterations = m.granted_iterations.value();
    q.used_iterations = m.used_iterations.value();
    q.budget = m.budget.value();
    q.deficit = m.deficit.value();
    snap.qos.push_back(q);
  }
  snap.server.requests_accepted = server_.requests_accepted.value();
  snap.server.requests_rejected = server_.requests_rejected.value();
  snap.server.requests_completed = server_.requests_completed.value();
  snap.server.request_errors = server_.request_errors.value();
  snap.server.connections_opened = server_.connections_opened.value();
  snap.server.connections_closed = server_.connections_closed.value();
  snap.server.request_latency_ns = server_.request_latency_ns.snapshot();
  return snap;
}

std::string MetricsRegistry::to_prometheus() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  out.reserve(4096);
  append(out,
         "# HELP relax_engine_jobs_submitted_total jobs accepted by "
         "submit()\n# TYPE relax_engine_jobs_submitted_total counter\n"
         "relax_engine_jobs_submitted_total %" PRIu64 "\n",
         snap.jobs_submitted);
  append(out,
         "# HELP relax_engine_jobs_completed_total jobs reaped\n"
         "# TYPE relax_engine_jobs_completed_total counter\n"
         "relax_engine_jobs_completed_total %" PRIu64 "\n",
         snap.jobs_completed);
  prom_counter(out, snap, "relax_worker_slices_total",
               "run_slice calls that made progress",
               [](const WorkerSnapshot& w) { return w.slices; });
  prom_counter(out, snap, "relax_worker_idle_visits_total",
               "run_slice calls that found no work",
               [](const WorkerSnapshot& w) { return w.idle_visits; });
  prom_counter(out, snap, "relax_worker_claims_total",
               "batched scheduler acquisition touches",
               [](const WorkerSnapshot& w) { return w.claims; });
  prom_counter(out, snap, "relax_worker_pops_total",
               "labels claimed from the scheduler",
               [](const WorkerSnapshot& w) { return w.pops; });
  prom_counter(out, snap, "relax_worker_processed_total",
               "tasks decided (successful steps)",
               [](const WorkerSnapshot& w) { return w.processed; });
  prom_counter(out, snap, "relax_worker_failed_deletes_total",
               "kNotReady pops re-inserted (wasted work)",
               [](const WorkerSnapshot& w) { return w.failed_deletes; });
  prom_counter(out, snap, "relax_worker_dead_skips_total",
               "kRetired pops (dead hits)",
               [](const WorkerSnapshot& w) { return w.dead_skips; });
  prom_counter(out, snap, "relax_worker_empty_polls_total",
               "scheduler touches that returned nothing",
               [](const WorkerSnapshot& w) { return w.empty_polls; });
  prom_counter(out, snap, "relax_worker_reinserts_total",
               "kNotReady labels flushed back via insert_batch",
               [](const WorkerSnapshot& w) { return w.reinserts; });
  prom_counter(out, snap, "relax_worker_numa_local_claims_total",
               "claims served from the worker's own topology domain",
               [](const WorkerSnapshot& w) { return w.numa_local_claims; });
  prom_counter(out, snap, "relax_worker_numa_steal_claims_total",
               "claims served cross-domain (bounded steal / fallback scan)",
               [](const WorkerSnapshot& w) { return w.numa_steal_claims; });
  prom_counter(out, snap, "relax_worker_parks_total",
               "times the worker parked on the pool condvar",
               [](const WorkerSnapshot& w) { return w.parks; });
  prom_counter(out, snap, "relax_worker_current_claim",
               "adaptive claim size after the worker's last slice",
               [](const WorkerSnapshot& w) { return w.current_claim; },
               "gauge");
  prom_counter(out, snap, "relax_worker_regime_ramps_total",
               "BatchController feedback doublings toward the cap",
               [](const WorkerSnapshot& w) { return w.regime_ramps; });
  prom_counter(out, snap, "relax_worker_regime_resets_total",
               "BatchController short-claim resets to 1",
               [](const WorkerSnapshot& w) { return w.regime_resets; });
  prom_counter(out, snap, "relax_worker_regime_backlog_jumps_total",
               "occupancy consults that jumped the claim to the cap",
               [](const WorkerSnapshot& w) { return w.regime_backlog_jumps; });
  prom_counter(out, snap, "relax_worker_regime_drain_pins_total",
               "occupancy consults that pinned single pops near drain",
               [](const WorkerSnapshot& w) { return w.regime_drain_pins; });
  prom_histogram(out, "relax_slice_latency_ns",
                 "per-slice wall latency, merged over workers",
                 snap.slice_ns);
  prom_quantiles(out, "relax_slice_latency_ns_quantile",
                 "slice latency percentiles (interpolated log2 buckets)",
                 snap.slice_ns);
  prom_histogram(out, "relax_claim_size",
                 "labels delivered per non-empty batched claim",
                 snap.claim_size);
  prom_histogram(out, "relax_park_ns", "parked duration per park",
                 snap.park_ns);
  // Per-tenant QoS ledger: emitted only when the governor ever claimed a
  // slot, so pre-QoS scrapes keep their exact historical exposition.
  if (!snap.qos.empty()) {
    const auto qos_family = [&](const char* name, const char* help,
                                const char* type, auto get) {
      append(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
      for (const QosTenantSnapshot& q : snap.qos) {
        append(out, "%s{job=\"%" PRIu64 "\",weight=\"%" PRIu64 "\"} %" PRIu64
               "\n",
               name, q.job_id, q.weight, get(q));
      }
    };
    qos_family("relax_qos_grants_total", "slice budgets granted by the governor",
               "counter", [](const QosTenantSnapshot& q) { return q.grants; });
    qos_family("relax_qos_granted_iterations_total",
               "sum of granted slice budgets (iterations)", "counter",
               [](const QosTenantSnapshot& q) { return q.granted_iterations; });
    qos_family("relax_qos_used_iterations_total",
               "slice iterations actually consumed", "counter",
               [](const QosTenantSnapshot& q) { return q.used_iterations; });
    qos_family("relax_qos_budget", "most recent granted slice budget", "gauge",
               [](const QosTenantSnapshot& q) { return q.budget; });
    qos_family("relax_qos_deficit", "banked DRR credit after the last settle",
               "gauge", [](const QosTenantSnapshot& q) { return q.deficit; });
  }
  // Front-end request accounting: emitted only when the server layer ever
  // recorded, so engine-only users keep their exact historical exposition.
  if (snap.server.requests_accepted + snap.server.requests_rejected +
          snap.server.request_errors + snap.server.connections_opened >
      0) {
    const auto scalar = [&](const char* name, const char* help,
                            std::uint64_t v) {
      append(out,
             "# HELP %s %s\n# TYPE %s counter\n%s %" PRIu64 "\n", name, help,
             name, name, v);
    };
    scalar("relax_server_requests_accepted_total",
           "requests admitted into the engine", snap.server.requests_accepted);
    scalar("relax_server_requests_rejected_total",
           "requests shed with BUSY (admission queue full)",
           snap.server.requests_rejected);
    scalar("relax_server_requests_completed_total",
           "requests completed with an OK response",
           snap.server.requests_completed);
    scalar("relax_server_request_errors_total",
           "malformed frames or invalid request fields",
           snap.server.request_errors);
    scalar("relax_server_connections_opened_total", "connections accepted",
           snap.server.connections_opened);
    scalar("relax_server_connections_closed_total", "connections closed",
           snap.server.connections_closed);
    prom_histogram(out, "relax_server_request_latency_ns",
                   "accept-to-completion latency per OK request",
                   snap.server.request_latency_ns);
    prom_quantiles(out, "relax_server_request_latency_ns_quantile",
                   "request latency percentiles (interpolated log2 buckets)",
                   snap.server.request_latency_ns);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  out.reserve(4096);
  out += "{\"workers\": [\n";
  for (std::size_t w = 0; w < snap.workers.size(); ++w) {
    const WorkerSnapshot& ws = snap.workers[w];
    append(out,
           "  {\"worker\": %zu, \"slices\": %" PRIu64
           ", \"idle_visits\": %" PRIu64 ", \"claims\": %" PRIu64
           ", \"pops\": %" PRIu64 ", \"processed\": %" PRIu64
           ", \"failed_deletes\": %" PRIu64 ", \"dead_skips\": %" PRIu64
           ", \"empty_polls\": %" PRIu64 ", \"reinserts\": %" PRIu64
           ", \"numa_local_claims\": %" PRIu64
           ", \"numa_steal_claims\": %" PRIu64
           ", \"current_claim\": %" PRIu64 ", \"regime_ramps\": %" PRIu64
           ", \"regime_resets\": %" PRIu64
           ", \"regime_backlog_jumps\": %" PRIu64
           ", \"regime_drain_pins\": %" PRIu64 ", \"parks\": %" PRIu64
           ", ",
           w, ws.slices, ws.idle_visits, ws.claims, ws.pops, ws.processed,
           ws.failed_deletes, ws.dead_skips, ws.empty_polls, ws.reinserts,
           ws.numa_local_claims, ws.numa_steal_claims,
           ws.current_claim, ws.regime_ramps, ws.regime_resets,
           ws.regime_backlog_jumps, ws.regime_drain_pins, ws.parks);
    json_histogram(out, "slice_latency_ns", ws.slice_ns, true);
    json_histogram(out, "claim_size", ws.claim_size, true);
    json_histogram(out, "park_ns", ws.park_ns, false);
    out += w + 1 < snap.workers.size() ? "},\n" : "}\n";
  }
  append(out,
         "], \"totals\": {\"jobs_submitted\": %" PRIu64
         ", \"jobs_completed\": %" PRIu64 ", ",
         snap.jobs_submitted, snap.jobs_completed);
  json_histogram(out, "slice_latency_ns", snap.slice_ns, true);
  json_histogram(out, "claim_size", snap.claim_size, true);
  json_histogram(out, "park_ns", snap.park_ns, false);
  out += "}, \"qos\": [";
  for (std::size_t i = 0; i < snap.qos.size(); ++i) {
    const QosTenantSnapshot& q = snap.qos[i];
    append(out,
           "%s{\"job\": %" PRIu64 ", \"weight\": %" PRIu64
           ", \"grants\": %" PRIu64 ", \"granted_iterations\": %" PRIu64
           ", \"used_iterations\": %" PRIu64 ", \"budget\": %" PRIu64
           ", \"deficit\": %" PRIu64 "}",
           i ? ", " : "", q.job_id, q.weight, q.grants, q.granted_iterations,
           q.used_iterations, q.budget, q.deficit);
  }
  append(out,
         "], \"server\": {\"requests_accepted\": %" PRIu64
         ", \"requests_rejected\": %" PRIu64
         ", \"requests_completed\": %" PRIu64 ", \"request_errors\": %" PRIu64
         ", \"connections_opened\": %" PRIu64
         ", \"connections_closed\": %" PRIu64 ", ",
         snap.server.requests_accepted, snap.server.requests_rejected,
         snap.server.requests_completed, snap.server.request_errors,
         snap.server.connections_opened, snap.server.connections_closed);
  json_histogram(out, "request_latency_ns", snap.server.request_latency_ns,
                 false);
  out += "}}\n";
  return out;
}

}  // namespace relax::obs
