#include "obs/trace_ring.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace relax::obs {

namespace {

const char* event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSlice:
      return "slice";
    case EventKind::kPark:
      return "park";
    case EventKind::kClaim:
      return "claim";
    case EventKind::kRegime:
      return "regime";
  }
  return "?";
}

const char* arg_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSlice:
      return "job";
    case EventKind::kPark:
      return "seq";
    case EventKind::kClaim:
      return "got";
    case EventKind::kRegime:
      return "claim";
  }
  return "arg";
}

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  // vsnprintf returns the UNtruncated length; clamp so a long line can
  // never make us read past the buffer.
  if (n > 0)
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

}  // namespace

std::string TraceRing::to_chrome_json() const {
  // Chrome trace-event "JSON array format": a flat array of event objects;
  // ts/dur are in MICROseconds (double). pid groups the whole engine, tid
  // is the worker lane. Metadata events name the lanes.
  std::string out;
  out.reserve(256 + 96 * event_count());
  out += "[\n";
  bool first = true;
  const auto emit_comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (unsigned w = 0; w < width(); ++w) {
    emit_comma();
    append(out,
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": %u, \"args\": {\"name\": \"worker %u (%" PRIu64
           " dropped)\"}}",
           w, w, lanes_[w]->dropped);
  }
  for (unsigned w = 0; w < width(); ++w) {
    const Lane& lane = *lanes_[w];
    // Oldest-first: once the ring wrapped, `next` points at the oldest
    // slot; before that, insertion order is already oldest-first.
    const std::size_t n = lane.events.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& ev =
          lane.events[(lane.next + i) % (n == 0 ? 1 : n)];
      emit_comma();
      const double ts_us = static_cast<double>(ev.ts_ns) / 1e3;
      if (ev.kind == EventKind::kSlice || ev.kind == EventKind::kPark) {
        append(out,
               "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
               "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"%s\": %u}}",
               event_name(ev.kind), w, ts_us,
               static_cast<double>(ev.dur_ns) / 1e3, arg_name(ev.kind),
               ev.arg);
      } else {
        append(out,
               "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, "
               "\"tid\": %u, \"ts\": %.3f, \"args\": {\"%s\": %u}}",
               event_name(ev.kind), w, ts_us, arg_name(ev.kind), ev.arg);
      }
    }
  }
  out += "\n]\n";
  return out;
}

bool TraceRing::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace relax::obs
