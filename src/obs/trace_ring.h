// TraceRing — per-worker event ring buffers that export Chrome trace-event
// JSON, so a whole multi-job engine run opens in chrome://tracing (or
// https://ui.perfetto.dev) as one lane per worker showing slices, claims,
// parks, and batch-controller regime changes.
//
// Design constraints, in order:
//   * zero cost when absent — every record site is gated on a null check,
//     and EngineOptions::trace defaults to nullptr (compiled in, off by
//     default);
//   * bounded memory — each worker owns a fixed-capacity ring and
//     overwrites its oldest events (dropped counts are reported in the
//     trace metadata), so an arbitrarily long run traces its tail;
//   * single-writer — a worker only ever records into its own lane, so
//     recording is two plain stores and an index bump, no atomics. The
//     export path requires quiescence (no slice in flight — e.g. after the
//     tickets you care about have been waited on and the pool is parked);
//     that is the same contract as Job::collect().
//
// Event vocabulary (EventKind):
//   kSlice   complete ("X") event, dur = slice wall time, arg = job id
//   kPark    complete event on the same lane, dur = parked time
//   kClaim   instant event, arg = labels delivered by one batched claim
//   kRegime  instant event, arg = the controller's new claim size
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/padded.h"
#include "util/timer.h"

namespace relax::obs {

enum class EventKind : std::uint8_t { kSlice, kPark, kClaim, kRegime };

struct TraceEvent {
  std::uint64_t ts_ns = 0;   // relative to the ring's reset
  std::uint64_t dur_ns = 0;  // 0 for instant events
  std::uint32_t arg = 0;     // job id / claim size / new regime claim
  EventKind kind = EventKind::kSlice;
};

class TraceRing {
 public:
  /// Per-worker event capacity. 16Ki events x 24B is ~400KiB per worker —
  /// enough for the tail of a long run, small enough to always leave on
  /// once a ring is attached.
  static constexpr std::size_t kDefaultCapacity = 1u << 14;

  explicit TraceRing(std::size_t capacity_per_worker = kDefaultCapacity)
      : capacity_(capacity_per_worker == 0 ? 1 : capacity_per_worker) {}

  /// Sizes one lane per worker and restarts the trace clock. Engine calls
  /// this before its workers exist; NOT thread-safe against record().
  void resize(unsigned workers) {
    lanes_.assign(workers, util::Padded<Lane>{});
    for (auto& lane : lanes_) lane->events.reserve(capacity_);
    clock_.reset();
  }

  [[nodiscard]] unsigned width() const noexcept {
    return static_cast<unsigned>(lanes_.size());
  }

  /// Now, in trace time (ns since resize). Callers stamp begin/end around
  /// the work they trace and record one complete event.
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(clock_.seconds() * 1e9);
  }

  /// Appends one event to `worker`'s lane, overwriting the oldest once the
  /// ring is full. Single-writer per lane (the pool's stable worker-id ->
  /// thread mapping); two stores and an index bump, no synchronization.
  void record(unsigned worker, EventKind kind, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::uint32_t arg) noexcept {
    Lane& lane = *lanes_[worker];
    const TraceEvent ev{ts_ns, dur_ns, arg, kind};
    if (lane.events.size() < capacity_) {
      lane.events.push_back(ev);
    } else {
      lane.events[lane.next] = ev;
      lane.next = (lane.next + 1) % capacity_;
      ++lane.dropped;
    }
  }

  /// Total events currently held (all lanes).
  [[nodiscard]] std::size_t event_count() const noexcept {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane->events.size();
    return n;
  }

  /// Events overwritten ring-wide (each overwrite dropped one old event).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& lane : lanes_) n += lane->dropped;
    return n;
  }

  /// Renders the rings as a Chrome trace-event JSON array (the format both
  /// chrome://tracing and Perfetto ingest): one named thread lane per
  /// worker, complete events for slices/parks, instants for claims/regime
  /// changes. Requires quiescence (see file header).
  [[nodiscard]] std::string to_chrome_json() const;

  /// to_chrome_json() straight to a file; false (with errno intact) when
  /// the file cannot be written.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Lane {
    std::vector<TraceEvent> events;  // ring once size reaches capacity
    std::size_t next = 0;            // oldest slot (overwrite cursor)
    std::uint64_t dropped = 0;
  };

  std::size_t capacity_;
  std::vector<util::Padded<Lane>> lanes_;
  util::Timer clock_;
};

}  // namespace relax::obs
