// MetricsRegistry — engine-wide, lock-free telemetry.
//
// One registry serves one SchedulingEngine (EngineOptions::metrics): a
// fixed schema of per-worker counters and log2 histograms, cache-line
// padded per worker so the hot path is plain relaxed fetch_adds on lines
// no other worker ever writes. Snapshots are taken on demand from any
// thread at any time — each counter is individually atomic, so a snapshot
// racing a slice is monitoring-consistent (the same contract as the striped
// size() reads the schedulers expose), and the exporters
// (to_prometheus/to_json, obs/metrics.cc) render a snapshot, never the
// live registry.
//
// Writers:
//   engine (engine.cc)        slices + slice latency per worker, job
//                             submit/complete counts
//   jobs (engine/job.h)       claims + claim-size distribution, pops,
//                             processed / failed-delete / dead-skip /
//                             empty-poll counts, re-inserted labels, and
//                             BatchController regime transitions
//   worker pool               park/unpark counts + park-time distribution
//
// Lifetime: the registry outlives the engine that records into it (it is
// caller-owned precisely so its contents survive the engine teardown in
// the one-shot run_parallel_* wrappers). resize() is NOT thread-safe —
// the engine calls it once, before its workers exist.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "util/padded.h"

namespace relax::obs {

/// Monotone event count. Relaxed-atomic: single-writer in this registry's
/// layout (one worker per slot), safe under any interleaving regardless.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Counter() = default;
  Counter(const Counter& o) noexcept { v_.store(o.value(), std::memory_order_relaxed); }
  Counter& operator=(const Counter& o) noexcept {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written level (e.g. the adaptive claim size a worker is currently
/// running). Relaxed set/read; no aggregation semantics beyond "latest".
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Gauge() = default;
  Gauge(const Gauge& o) noexcept { v_.store(o.value(), std::memory_order_relaxed); }
  Gauge& operator=(const Gauge& o) noexcept {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// One worker's metric block. Padded<WorkerMetrics> slots mean no two
/// workers ever share a cache line; within a block every field has a single
/// writer (that worker's thread, or the engine thread driving it).
struct WorkerMetrics {
  // Engine-level slice accounting (recorded by SchedulingEngine::work).
  Counter slices;            // run_slice calls that made progress
  Counter idle_visits;       // run_slice calls that found nothing to do
  AtomicHistogram slice_ns;  // latency of progress-making slices

  // Job-level scheduler-loop accounting (recorded by RelaxedJob).
  Counter claims;            // batched scheduler touches (pop_batch calls)
  AtomicHistogram claim_size;  // labels delivered per non-empty claim
  Counter pops;              // labels claimed (sum over claims)
  Counter processed;
  Counter failed_deletes;
  Counter dead_skips;
  Counter empty_polls;
  Counter reinserts;         // kNotReady labels flushed back
  Counter numa_local_claims;  // claims served from the worker's own domain
  Counter numa_steal_claims;  // claims served cross-domain (bounded steal)
  Gauge current_claim;       // adaptive claim size after the last slice

  // BatchController regime transitions (deltas flushed per slice).
  Counter regime_ramps;        // feedback doublings toward the cap
  Counter regime_resets;       // short claim -> back to 1
  Counter regime_backlog_jumps;  // occupancy consult jumped to the cap
  Counter regime_drain_pins;     // occupancy consult pinned single pops

  // Worker-pool accounting (recorded by WorkerPool::worker_main).
  Counter parks;
  AtomicHistogram park_ns;   // parked duration per park
};

/// Front-end (src/server/) request accounting: one block per registry, not
/// per worker — the epoll thread and the reaping workers both write here,
/// which the atomic counters tolerate (multi-writer relaxed adds, unlike
/// the single-writer-by-layout worker blocks).
struct ServerMetrics {
  Counter requests_accepted;   // admitted into the engine
  Counter requests_rejected;   // shed with BUSY (admission queue full)
  Counter requests_completed;  // OK responses produced
  Counter request_errors;      // malformed frames / bad request fields
  Counter connections_opened;
  Counter connections_closed;
  AtomicHistogram request_latency_ns;  // accept -> completion callback
};

/// One tenant's QoS ledger (engine/qos.h writes, exporters read). Slots
/// are claimed round-robin by QosGovernor::admit and deliberately survive
/// job completion, so a post-run export still shows every tenant the run
/// ever admitted — the CI loopback smoke greps these after shutdown.
/// Multi-writer like ServerMetrics: any worker visiting the job records
/// here. job_id/weight ride in Gauges (not raw integers) so the struct
/// stays copyable for resize()'s vector::assign.
struct QosTenantMetrics {
  Gauge job_id;               // engine job id this slot currently describes
  Gauge weight;               // tenant weight (1 = default)
  Counter grants;             // slice budgets handed out
  Counter granted_iterations; // sum of granted budgets
  Counter used_iterations;    // sum of iterations actually consumed
  Gauge budget;               // most recent granted budget
  Gauge deficit;              // DRR credit after the last settle (saturated at 0)
};

/// Plain point-in-time copy of one QoS tenant slot.
struct QosTenantSnapshot {
  std::uint64_t job_id = 0;
  std::uint64_t weight = 0;
  std::uint64_t grants = 0;
  std::uint64_t granted_iterations = 0;
  std::uint64_t used_iterations = 0;
  std::uint64_t budget = 0;
  std::uint64_t deficit = 0;
};

/// Plain point-in-time copy of the server block.
struct ServerSnapshot {
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t request_errors = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  Histogram request_latency_ns;
};

/// Plain point-in-time copy of one worker's block.
struct WorkerSnapshot {
  std::uint64_t slices = 0;
  std::uint64_t idle_visits = 0;
  Histogram slice_ns;
  std::uint64_t claims = 0;
  Histogram claim_size;
  std::uint64_t pops = 0;
  std::uint64_t processed = 0;
  std::uint64_t failed_deletes = 0;
  std::uint64_t dead_skips = 0;
  std::uint64_t empty_polls = 0;
  std::uint64_t reinserts = 0;
  std::uint64_t numa_local_claims = 0;
  std::uint64_t numa_steal_claims = 0;
  std::uint64_t current_claim = 0;
  std::uint64_t regime_ramps = 0;
  std::uint64_t regime_resets = 0;
  std::uint64_t regime_backlog_jumps = 0;
  std::uint64_t regime_drain_pins = 0;
  std::uint64_t parks = 0;
  Histogram park_ns;
};

/// The whole registry at an instant: per-worker blocks plus the engine-
/// level job counters and the cross-worker merged histograms the percentile
/// summaries render from.
struct MetricsSnapshot {
  std::vector<WorkerSnapshot> workers;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  Histogram slice_ns;    // merged over workers
  Histogram claim_size;  // merged over workers
  Histogram park_ns;     // merged over workers
  std::vector<QosTenantSnapshot> qos;  // claimed tenant slots, claim order
  ServerSnapshot server;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// Sizes the per-worker slots. Called by the engine before any worker
  /// runs (NOT thread-safe against record paths); clears previous contents,
  /// so one registry object can serve several consecutive runs.
  void resize(unsigned workers) {
    workers_.assign(workers, util::Padded<WorkerMetrics>{});
    jobs_submitted_ = Counter{};
    jobs_completed_ = Counter{};
    server_ = ServerMetrics{};
    qos_.assign(kQosSlots, util::Padded<QosTenantMetrics>{});
    qos_next_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] unsigned width() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// The metric block for `worker` (< width()). Hot path: callers cache the
  /// reference per slice and issue relaxed adds.
  [[nodiscard]] WorkerMetrics& worker(unsigned w) noexcept {
    return *workers_[w];
  }

  Counter& jobs_submitted() noexcept { return jobs_submitted_; }
  Counter& jobs_completed() noexcept { return jobs_completed_; }

  /// Front-end request/connection accounting (src/server/). Multi-writer:
  /// the epoll thread and reaping workers record concurrently.
  ServerMetrics& server() noexcept { return server_; }

  /// Fixed pool of QoS tenant slots; engines with more than kQosSlots
  /// concurrent-plus-historical tenants recycle the oldest slot (the
  /// exporter then shows the most recent kQosSlots tenants, which is the
  /// right monitoring behaviour for a long-lived server).
  static constexpr unsigned kQosSlots = 32;

  /// Claims (or recycles) a tenant slot and stamps its identity; counters
  /// in a recycled slot restart from zero. Callers are serialized by the
  /// engine's admission mutex; the atomic cursor keeps even unserialized
  /// callers from sharing a slot.
  QosTenantMetrics* claim_qos_slot(std::uint64_t job_id,
                                   std::uint32_t weight) noexcept {
    if (qos_.empty()) return nullptr;
    const unsigned at =
        qos_next_.fetch_add(1, std::memory_order_relaxed) % kQosSlots;
    QosTenantMetrics& slot = *qos_[at];
    slot = QosTenantMetrics{};
    slot.job_id.set(job_id);
    slot.weight.set(weight);
    return &slot;
  }

  /// Point-in-time copy, callable from any thread concurrently with
  /// recording (monitoring-consistent; see file header).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus text exposition of a fresh snapshot: per-worker counters,
  /// merged histogram buckets (cumulative le-form), and slice-latency
  /// quantile summaries.
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON object form of the same snapshot ({"workers": [...], "totals":
  /// {...}}), for machine consumers.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<util::Padded<WorkerMetrics>> workers_;
  Counter jobs_submitted_;
  Counter jobs_completed_;
  ServerMetrics server_;
  std::vector<util::Padded<QosTenantMetrics>> qos_;
  std::atomic<unsigned> qos_next_{0};
};

}  // namespace relax::obs
