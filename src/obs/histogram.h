// Log2-bucketed histograms for engine telemetry.
//
// Two flavors over one bucket scheme:
//
//   Histogram        plain counters — single-writer (a worker's private
//                    stripe) or externally quiesced data. Mergeable, and the
//                    value type ExecutionStats embeds for per-job
//                    slice-latency percentiles.
//   AtomicHistogram  the registry's live form: record() is a handful of
//                    relaxed fetch_adds on the owning worker's padded cache
//                    lines, snapshot() reads them from any thread at any
//                    time (each counter is individually atomic; a snapshot
//                    taken mid-write is a consistent-enough instant for
//                    monitoring, exactly like the striped size() reads the
//                    schedulers already expose).
//
// Bucket b holds values v with bucket_floor(b) <= v <= bucket_ceil(b):
// value 0 is bucket 0, otherwise b = bit_width(v), so bucket 1 = {1},
// bucket 2 = {2,3}, bucket 3 = {4..7}, ... — 65 buckets cover all of
// uint64. Percentiles interpolate linearly inside the boundary bucket, so
// a reported quantile is exact for single-value buckets (0 and 1) and
// within a factor of two everywhere else — plenty for latency telemetry,
// where the interesting signal is orders of magnitude.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace relax::obs {

inline constexpr unsigned kHistogramBuckets = 65;

/// Bucket index for a value: 0 -> 0, otherwise bit_width(v) (the position
/// of the highest set bit, 1-based).
[[nodiscard]] constexpr unsigned bucket_index(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v));
}

/// Smallest value landing in bucket b.
[[nodiscard]] constexpr std::uint64_t bucket_floor(unsigned b) noexcept {
  return b <= 1 ? b : std::uint64_t{1} << (b - 1);
}

/// Largest value landing in bucket b.
[[nodiscard]] constexpr std::uint64_t bucket_ceil(unsigned b) noexcept {
  return b == 0 ? 0
         : b >= 64
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << b) - 1;
}

/// Plain log2 histogram: single-writer or quiesced. Value-type (copyable,
/// mergeable); this is what snapshots and ExecutionStats carry.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& o) noexcept {
    for (unsigned b = 0; b < kHistogramBuckets; ++b)
      buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(unsigned b) const noexcept {
    return b < kHistogramBuckets ? buckets_[b] : 0;
  }

  /// The p-th percentile (p in [0, 100]) as a linear interpolation inside
  /// the bucket holding the p-th sample; 0 when the histogram is empty.
  /// Single-value buckets (values 0 and 1) are exact; wider buckets are
  /// correct to within their power-of-two span. The reported value never
  /// exceeds max() (the top bucket interpolates toward the observed max,
  /// not its theoretical ceiling).
  [[nodiscard]] double percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) {
      for (unsigned b = 0; b < kHistogramBuckets; ++b)
        if (buckets_[b] != 0) return static_cast<double>(bucket_floor(b));
      return 0.0;
    }
    if (p >= 100.0) return static_cast<double>(max_);
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const std::uint64_t next = seen + buckets_[b];
      if (static_cast<double>(next) >= target) {
        const double lo = static_cast<double>(bucket_floor(b));
        // Interpolate toward the bucket's observed ceiling: the max for
        // the last populated bucket, the bucket boundary otherwise.
        const bool last = next == count_;
        // max(lo, ...): a racy AtomicHistogram snapshot can carry a max
        // that trails the bucket counts; never interpolate downward.
        const double hi =
            last ? std::max(lo, static_cast<double>(max_))
                 : static_cast<double>(bucket_ceil(b));
        const double frac = (target - static_cast<double>(seen)) /
                            static_cast<double>(buckets_[b]);
        return lo + (hi - lo) * frac;
      }
      seen = next;
    }
    return static_cast<double>(max_);
  }

 private:
  friend class AtomicHistogram;  // snapshot() assembles a Histogram directly

  std::array<std::uint64_t, kHistogramBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Relaxed-atomic log2 histogram for the live MetricsRegistry: record() on
/// the hot path is 3 relaxed fetch_adds plus a relaxed CAS max (all on the
/// owning worker's padded lines — single-writer in practice, but safe under
/// any interleaving), snapshot() is readable from any thread mid-write.
class AtomicHistogram {
 public:
  AtomicHistogram() = default;
  // Registries resize their per-worker slots before workers start; the
  // copy-from-quiescent forms make that vector surgery possible.
  AtomicHistogram(const AtomicHistogram& o) noexcept { copy_from(o); }
  AtomicHistogram& operator=(const AtomicHistogram& o) noexcept {
    copy_from(o);
    return *this;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    raise_max(v);
  }

  /// Batched form of record(): folds a worker-local plain Histogram in with
  /// one relaxed add per populated bucket. This is how hot loops keep the
  /// per-sample cost at plain-integer speed — accumulate locally, merge
  /// once per slice.
  void merge_from(const Histogram& h) noexcept {
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      if (h.bucket(b) != 0)
        buckets_[b].fetch_add(h.bucket(b), std::memory_order_relaxed);
    }
    if (h.count() == 0) return;
    count_.fetch_add(h.count(), std::memory_order_relaxed);
    sum_.fetch_add(h.sum(), std::memory_order_relaxed);
    raise_max(h.max());
  }

  /// A point-in-time plain copy; safe concurrently with record(). Counters
  /// are read individually (relaxed), so a snapshot racing a record() may
  /// be off by the in-flight sample — monitoring-grade, like the striped
  /// scheduler size() reads.
  [[nodiscard]] Histogram snapshot() const noexcept {
    Histogram h;
    std::uint64_t count = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      h.buckets_[b] = buckets_[b].load(std::memory_order_relaxed);
      count += h.buckets_[b];
    }
    // Derive count from the bucket reads so the snapshot is internally
    // consistent (percentile walks the buckets against count_); sum/max
    // may trail by in-flight samples, which only perturbs mean()/max().
    h.count_ = count;
    h.sum_ = sum_.load(std::memory_order_relaxed);
    h.max_ = max_.load(std::memory_order_relaxed);
    return h;
  }

 private:
  void raise_max(std::uint64_t v) noexcept {
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  void copy_from(const AtomicHistogram& o) noexcept {
    for (unsigned b = 0; b < kHistogramBuckets; ++b)
      buckets_[b].store(o.buckets_[b].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    count_.store(o.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(o.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(o.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace relax::obs
