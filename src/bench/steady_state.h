// Steady-state timed benchmark harness over the backend registry.
//
// Every other bench in the repo is run-to-completion: one job, cold start
// to drain, so each measurement mixes allocator warmup with end-of-run
// starvation. This harness measures what a production relaxed scheduler
// actually serves — sustained mixed traffic at steady state — in the style
// of the multiqueue throughput harness (KvGeijer/multiqueue
// benchmark/throughput.cpp):
//
//   1. prefill   ~1M keys are inserted before any clock starts, so the
//                working phase never observes an empty or tiny structure;
//   2. timed     every thread hammers insert/delete ops per its
//      window     InsertPolicy role for a fixed wall-clock window; ops are
//                counted per thread (padded counters, no sharing) and
//                throughput is ops completed / window — the drain phase is
//                never measured because there is no drain phase;
//   3. median    the window is repeated `runs` times on a fresh backend
//      of N      and the median-throughput run is reported, which is what
//                makes the numbers stable enough for a *binding* CI perf
//                gate (tools/bench_diff.py --fail) where single-shot
//                run-to-completion cells only ever earned ::warning.
//
// Key streams come from sched/key_distribution.h (Uniform / Dijkstra /
// Ascending / Descending); thread roles from InsertPolicy (Uniform / Split
// / Producer / Alternating). Both scheduler sides batch with the same
// pop_batch vocabulary as the CLIs, including the occupancy-aware adaptive
// controller (`auto[:max]`) on the delete side.
//
// Quality: an optional companion pass re-runs the same traffic serialized
// through a RelaxationMonitor (one mutex, exact order-statistics mirror
// sized to the key universe) and reports Definition 1 rank-error
// percentiles — throughput from that pass is meaningless and discarded,
// exactly like bench/backend_matrix's monitored companion runs.
//
// Tail latency rides the PR 6 obs layer: a 1-in-64 sample of scheduler
// touches is timed into per-thread obs::Histograms and reported as
// op_p99_us.
//
// The timed pass also supports topology-aware placement (SteadyConfig::
// numa — same off | auto | virtual:K vocabulary as the CLIs) and records
// a throughput-over-time profile (SteadyCell::buckets, ops per 100 ms) so
// "steady" is checkable, not assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/backend_registry.h"
#include "sched/key_distribution.h"
#include "util/topology.h"

namespace relax::bench {

/// One steady-state cell request. Defaults mirror the classic throughput
/// harness: 1M prefill, 1s window, median of 3.
struct SteadyConfig {
  const sched::BackendInfo* backend = nullptr;  // required
  unsigned threads = 4;
  sched::InsertPolicy policy = sched::InsertPolicy::kUniform;
  sched::KeyDistribution distribution = sched::KeyDistribution::kUniform;
  std::uint32_t pop_batch = 1;
  bool pop_batch_auto = false;
  std::size_t prefill = 1'000'000;
  double working_seconds = 1.0;
  unsigned runs = 3;
  /// Priority universe [0, key_universe): bounds the exact rank mirror
  /// (Fenwick tree of key_universe counts) and the sim backends' capacity.
  std::uint32_t key_universe = 1u << 22;
  std::uint64_t seed = 1;
  std::uint32_t queue_factor = 4;
  bool quality = true;            // run the monitored companion pass
  std::uint32_t monitor_stride = 64;  // inversion-tracking stride
  /// Topology placement for the timed pass (off | auto | virtual:K): the
  /// backend is striped per domain and every thread's handle carries its
  /// domain, exactly as the engine places pool workers (util/topology.h).
  /// The monitored companion pass stays flat — it serializes through one
  /// lock, so placement would measure nothing.
  util::TopologySpec numa;
};

/// One reported cell: the median-of-N timed run plus the companion pass's
/// rank percentiles. Quality fields are < 0 (max_rank 0) when not measured.
struct SteadyCell {
  std::string backend;
  unsigned threads = 0;
  sched::InsertPolicy policy = sched::InsertPolicy::kUniform;
  sched::KeyDistribution distribution = sched::KeyDistribution::kUniform;
  std::uint32_t pop_batch = 1;
  bool pop_batch_auto = false;
  std::string numa;  // topology spec label: off | auto | virtual:K
  unsigned runs = 0;

  double seconds = 0.0;       // the median run's measured window
  std::uint64_t ops = 0;      // inserts + successful deletes, median run
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t empty_pops = 0;  // observed-empty delete touches
  double ops_per_s = 0.0;        // median over the N runs
  double op_p99_us = -1.0;       // sampled per-touch latency tail
  /// Throughput over time: completed ops per 100 ms bucket across the
  /// median run's window (all threads summed). A steady backend shows a
  /// flat profile; ramp-up stalls or mid-window collapses — invisible in
  /// the single ops_per_s aggregate — show up as bucket dips. Attribution
  /// rides the existing 1-in-64 sampled clock reads, so the buckets cost
  /// the hot loop nothing extra.
  std::vector<std::uint64_t> buckets;

  double mean_rank = -1.0;
  double rank_p50 = -1.0;
  double rank_p90 = -1.0;
  double rank_p99 = -1.0;
  std::uint64_t max_rank = 0;
};

/// Runs cfg.runs timed windows (fresh backend each) plus the optional
/// monitored pass, and returns the assembled cell. cfg.backend must name a
/// registry backend.
[[nodiscard]] SteadyCell run_steady_cell(const SteadyConfig& cfg);

/// Appends one JSON object for `cell` (no trailing comma/newline) to
/// `out`: the bench_diff row schema — workload "steady", the
/// backend/threads/pop_batch keys backend_matrix already emits, extended
/// with policy / distribution / runs and the steady-state measurements.
void append_json_row(std::string& out, const SteadyCell& cell);

}  // namespace relax::bench
