#include "bench/steady_state.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "sched/batch_controller.h"
#include "sched/handles.h"
#include "sched/stripe_map.h"
#include "sched/relaxation_monitor.h"
#include "util/padded.h"
#include "util/timer.h"

namespace relax::bench {
namespace {

using sched::Priority;

/// 1-in-N scheduler touches are wall-clocked into the latency histogram.
/// Timing every touch would put two clock reads on the hot path of the
/// very number the harness exists to measure.
constexpr std::uint64_t kLatencySampleStride = 64;

/// Width of one throughput-over-time bucket (SteadyCell::buckets).
constexpr std::uint64_t kBucketNs = 100'000'000;  // 100 ms

/// One thread's tallies, cache-line padded against false sharing.
struct ThreadCounters {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t empty_pops = 0;
  obs::Histogram op_latency_ns;
  std::vector<std::uint64_t> buckets;  // completed ops per 100 ms bucket
};

struct TimedRun {
  double seconds = 0.0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t empty_pops = 0;
  double ops_per_s = 0.0;
  double op_p99_us = -1.0;
  std::vector<std::uint64_t> buckets;  // summed over threads
};

sched::BackendParams steady_params(const SteadyConfig& cfg) {
  sched::BackendParams params;
  params.threads = std::max<unsigned>(cfg.threads, 1);
  params.queue_factor = cfg.queue_factor;
  params.seed = cfg.seed;
  params.capacity = cfg.key_universe;
  return params;
}

std::uint64_t thread_seed(std::uint64_t seed, unsigned tid) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (tid + 1));
}

/// Single-threaded prefill through `sink` (a queue, or the monitored
/// view): chunked batched inserts so a 1M prefill costs thousands of
/// coordination round trips, not a million.
template <typename Sink>
void prefill_into(Sink& sink, const SteadyConfig& cfg) {
  constexpr std::size_t kChunk = 4096;
  sched::KeyGenerator gen(cfg.distribution, cfg.key_universe, 0, 1);
  util::Rng rng(thread_seed(cfg.seed, ~0u));
  std::vector<Priority> chunk;
  chunk.reserve(kChunk);
  std::size_t remaining = cfg.prefill;
  while (remaining > 0) {
    chunk.clear();
    const std::size_t n = std::min(kChunk, remaining);
    for (std::size_t i = 0; i < n; ++i) chunk.push_back(gen.next(rng));
    sched::insert_batch(sink, std::span<const Priority>(chunk));
    remaining -= n;
  }
}

/// The per-thread op loop shared by the timed and the monitored passes.
/// `Insert` is (span<const Priority>) -> void; `Claim` is
/// (k, vector<Priority>&) -> size_t. Counting and Dijkstra feedback live
/// here so both passes measure exactly the same traffic shape.
template <typename Occupancy, typename Insert, typename Claim>
void op_loop(const SteadyConfig& cfg, unsigned tid,
             const std::atomic<bool>& go, const std::atomic<bool>& stop,
             sched::BatchController& ctl, const Occupancy& occupancy,
             ThreadCounters& counters, Insert&& do_insert, Claim&& do_claim) {
  using Clock = std::chrono::steady_clock;
  sched::OpSequencer seq(cfg.policy, tid, cfg.threads);
  sched::KeyGenerator gen(cfg.distribution, cfg.key_universe, tid,
                          cfg.threads);
  util::Rng rng(thread_seed(cfg.seed, tid));
  std::vector<Priority> insbuf;
  std::vector<Priority> popbuf;
  insbuf.reserve(cfg.pop_batch);
  popbuf.reserve(cfg.pop_batch);
  std::uint64_t touches = 0;

  while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

  // Throughput-over-time attribution. Ops accumulate in a plain local and
  // are flushed into the 100 ms bucket the *sampled* clock reads land in —
  // zero extra clock reads on the hot path. Worst-case smear is the ops
  // between two samples (64 touches), far below one bucket's population.
  const auto window_start = Clock::now();
  std::uint64_t pending_ops = 0;
  const auto flush_bucket = [&](Clock::time_point now) {
    const auto idx = static_cast<std::size_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             window_start)
            .count() /
        kBucketNs);
    if (counters.buckets.size() <= idx) counters.buckets.resize(idx + 1, 0);
    counters.buckets[idx] += pending_ops;
    pending_ops = 0;
  };

  while (!stop.load(std::memory_order_relaxed)) {
    const bool sampled = (++touches % kLatencySampleStride) == 0;
    const auto t0 = sampled ? Clock::now() : Clock::time_point{};
    if (seq.next_is_insert(rng)) {
      // The insert side batches at the fixed cap; only the delete side
      // adapts (shrinking inserts near drain would starve the deleters the
      // policy pairs them with).
      insbuf.clear();
      for (std::uint32_t i = 0; i < cfg.pop_batch; ++i)
        insbuf.push_back(gen.next(rng));
      do_insert(std::span<const Priority>(insbuf));
      counters.inserts += insbuf.size();
      pending_ops += insbuf.size();
    } else {
      const std::uint32_t k = ctl.next_claim(occupancy);
      popbuf.clear();
      const std::size_t got = do_claim(k, popbuf);
      ctl.feedback(k, static_cast<std::uint32_t>(got));
      if (got == 0) {
        ++counters.empty_pops;
      } else {
        counters.deletes += got;
        pending_ops += got;
        for (const Priority p : popbuf) gen.feed(p);
      }
    }
    if (sampled) {
      const auto t1 = Clock::now();
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      counters.op_latency_ns.record(static_cast<std::uint64_t>(ns));
      flush_bucket(t1);
    }
  }
  flush_bucket(Clock::now());  // the tail since the last sampled touch
}

/// One timed window over a fresh `queue`.
template <typename Queue>
TimedRun run_timed(Queue& queue, const SteadyConfig& cfg) {
  const unsigned threads = std::max<unsigned>(cfg.threads, 1);
  // Topology placement mirrors the engine: stripe the backend per domain
  // while it is still quiescent, then hand each thread's session its
  // domain. Backends without the striping surface stay flat.
  const util::WorkerPlacement placement =
      util::plan_workers(cfg.numa, threads);
  if constexpr (requires(Queue& q, const sched::StripeMap& m) {
                  q.num_queues();
                  q.set_stripe_map(m);
                }) {
    if (placement.num_domains > 1) {
      queue.set_stripe_map(sched::StripeMap(
          static_cast<std::size_t>(queue.num_queues()),
          placement.num_domains));
    }
  }
  prefill_into(queue, cfg);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<util::Padded<ThreadCounters>> counters(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      auto handle = sched::make_handle(queue);
      if constexpr (requires { handle.set_domain(0u); }) {
        if (placement.num_domains > 1)
          handle.set_domain(placement.domain[tid]);
      }
      // Width-aware watermarks: occupancy is global, so the near-drain /
      // deep-backlog thresholds scale with how much the whole pool claims
      // per round (sched/batch_controller.h).
      sched::BatchController ctl(
          cfg.pop_batch, cfg.pop_batch_auto, /*high_watermark=*/0,
          sched::BatchController::kDefaultConsultPeriod, threads);
      const sched::QueueOccupancy<Queue> occupancy{&queue};
      op_loop(
          cfg, tid, go, stop, ctl, occupancy, *counters[tid],
          [&](std::span<const Priority> keys) {
            sched::insert_batch(handle, keys);
          },
          [&](std::size_t k, std::vector<Priority>& out) {
            return sched::pop_batch(handle, k, out);
          });
    });
  }

  util::Timer timer;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(cfg.working_seconds));
  stop.store(true, std::memory_order_relaxed);
  const double window = timer.seconds();
  for (auto& t : pool) t.join();

  TimedRun run;
  run.seconds = window;
  obs::Histogram latency;
  for (const auto& c : counters) {
    run.inserts += c->inserts;
    run.deletes += c->deletes;
    run.empty_pops += c->empty_pops;
    latency.merge(c->op_latency_ns);
    if (c->buckets.size() > run.buckets.size())
      run.buckets.resize(c->buckets.size(), 0);
    for (std::size_t b = 0; b < c->buckets.size(); ++b)
      run.buckets[b] += c->buckets[b];
  }
  // Threads may straggle a few ops past the stop flag into a bucket beyond
  // the window; clamp to the window's bucket count so the profile length
  // is a function of working_seconds, not scheduler jitter.
  const std::size_t want_buckets = static_cast<std::size_t>(
      static_cast<std::uint64_t>(window * 1e9 + kBucketNs - 1) / kBucketNs);
  if (run.buckets.size() > want_buckets && want_buckets > 0) {
    for (std::size_t b = want_buckets; b < run.buckets.size(); ++b)
      run.buckets[want_buckets - 1] += run.buckets[b];
    run.buckets.resize(want_buckets);
  }
  const std::uint64_t ops = run.inserts + run.deletes;
  run.ops_per_s = window > 0.0 ? static_cast<double>(ops) / window : 0.0;
  if (latency.count() > 0) run.op_p99_us = latency.percentile(99) / 1e3;
  return run;
}

/// The monitored companion pass: identical traffic, every scheduler touch
/// serialized under one mutex through a RelaxationMonitor whose exact
/// mirror spans the key universe. Rank percentiles come out; throughput
/// does not (a global lock is not the thing being measured). Runs a
/// shorter window than the timed phase — rank statistics converge in a
/// fraction of the ops throughput needs.
template <typename Queue>
void run_monitored(Queue& queue, const SteadyConfig& cfg, SteadyCell& cell) {
  const unsigned threads = std::max<unsigned>(cfg.threads, 1);
  const double window = std::min(cfg.working_seconds, 0.5);

  sched::RelaxationMonitor<sched::SequentialView<Queue>> monitor(
      sched::SequentialView<Queue>(queue), cfg.key_universe,
      cfg.monitor_stride);
  prefill_into(monitor, cfg);

  std::mutex mu;
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<util::Padded<ThreadCounters>> counters(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      sched::BatchController ctl(cfg.pop_batch, cfg.pop_batch_auto);
      const sched::NoOccupancy occupancy;
      op_loop(
          cfg, tid, go, stop, ctl, occupancy, *counters[tid],
          [&](std::span<const Priority> keys) {
            std::lock_guard<std::mutex> guard(mu);
            monitor.insert_batch(keys);
          },
          [&](std::size_t k, std::vector<Priority>& out) {
            std::lock_guard<std::mutex> guard(mu);
            return monitor.approx_get_min_batch(k, out);
          });
    });
  }

  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(window));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : pool) t.join();

  const util::ExponentialHistogram& ranks = monitor.rank_histogram();
  if (ranks.total() > 0) {
    cell.mean_rank = ranks.mean();
    cell.rank_p50 = ranks.percentile(50);
    cell.rank_p90 = ranks.percentile(90);
    cell.rank_p99 = ranks.percentile(99);
    cell.max_rank = ranks.max_value();
  }
}

}  // namespace

SteadyCell run_steady_cell(const SteadyConfig& cfg) {
  if (cfg.backend == nullptr)
    throw std::invalid_argument("run_steady_cell: cfg.backend is required");

  SteadyCell cell;
  cell.backend = std::string(cfg.backend->name);
  cell.threads = std::max<unsigned>(cfg.threads, 1);
  cell.policy = cfg.policy;
  cell.distribution = cfg.distribution;
  cell.pop_batch = cfg.pop_batch;
  cell.pop_batch_auto = cfg.pop_batch_auto;
  cell.numa = cfg.numa.label();
  cell.runs = std::max<unsigned>(cfg.runs, 1);

  sched::dispatch_backend(
      *cfg.backend, steady_params(cfg), [&](auto tag, auto&&... args) {
        using Queue = typename decltype(tag)::type;

        std::vector<TimedRun> runs;
        runs.reserve(cell.runs);
        for (unsigned r = 0; r < cell.runs; ++r) {
          SteadyConfig run_cfg = cfg;
          run_cfg.seed = cfg.seed + r;  // fresh streams per repetition
          Queue queue(args...);
          runs.push_back(run_timed(queue, run_cfg));
        }
        // Median by sustained throughput: sort and take the middle run
        // wholesale, so every reported number comes from one coherent run.
        std::sort(runs.begin(), runs.end(),
                  [](const TimedRun& a, const TimedRun& b) {
                    return a.ops_per_s < b.ops_per_s;
                  });
        const TimedRun& median = runs[(runs.size() - 1) / 2];
        cell.seconds = median.seconds;
        cell.inserts = median.inserts;
        cell.deletes = median.deletes;
        cell.empty_pops = median.empty_pops;
        cell.ops = median.inserts + median.deletes;
        cell.ops_per_s = median.ops_per_s;
        cell.op_p99_us = median.op_p99_us;
        cell.buckets = median.buckets;

        if (cfg.quality) {
          Queue queue(args...);
          run_monitored(queue, cfg, cell);
        }
      });
  return cell;
}

void append_json_row(std::string& out, const SteadyCell& cell) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"workload\": \"steady\", \"backend\": \"%s\", \"threads\": %u, "
      "\"pop_batch\": %u, \"pop_batch_auto\": %s, \"numa\": \"%s\", "
      "\"policy\": \"%s\", "
      "\"distribution\": \"%s\", \"runs\": %u, \"seconds\": %.6f, "
      "\"tasks_per_s\": %.1f, \"ops\": %" PRIu64 ", \"inserts\": %" PRIu64
      ", \"deletes\": %" PRIu64 ", \"empty_pops\": %" PRIu64 ", ",
      cell.backend.c_str(), cell.threads, cell.pop_batch,
      cell.pop_batch_auto ? "true" : "false", cell.numa.c_str(),
      std::string(sched::insert_policy_name(cell.policy)).c_str(),
      std::string(sched::key_distribution_name(cell.distribution)).c_str(),
      cell.runs, cell.seconds, cell.ops_per_s, cell.ops, cell.inserts,
      cell.deletes, cell.empty_pops);
  out += buf;
  // Throughput-over-time profile. New with the topology PR; baselines
  // written before it simply lack the field, and bench_diff.py compares
  // only the metrics it knows, so old-vs-new diffs keep working.
  out += "\"buckets\": [";
  for (std::size_t b = 0; b < cell.buckets.size(); ++b) {
    std::snprintf(buf, sizeof buf, "%s%" PRIu64, b > 0 ? ", " : "",
                  cell.buckets[b]);
    out += buf;
  }
  out += "], ";
  if (cell.op_p99_us >= 0.0) {
    std::snprintf(buf, sizeof buf, "\"op_p99_us\": %.2f, ", cell.op_p99_us);
  } else {
    std::snprintf(buf, sizeof buf, "\"op_p99_us\": null, ");
  }
  out += buf;
  if (cell.mean_rank >= 0.0) {
    std::snprintf(buf, sizeof buf,
                  "\"mean_rank\": %.4f, \"rank_p50\": %.1f, "
                  "\"rank_p90\": %.1f, \"rank_p99\": %.1f, "
                  "\"max_rank\": %" PRIu64 "}",
                  cell.mean_rank, cell.rank_p50, cell.rank_p90, cell.rank_p99,
                  cell.max_rank);
  } else {
    std::snprintf(buf, sizeof buf,
                  "\"mean_rank\": null, \"rank_p50\": null, "
                  "\"rank_p90\": null, \"rank_p99\": null, "
                  "\"max_rank\": null}");
  }
  out += buf;
}

}  // namespace relax::bench
